// Stress and regression tests for Algorithm 2's overrun machinery.
//
// The dangerous window is a node overrun by a stronger claim between its
// stage-2 ack and the CONFIRM of the old expedition: it must still deliver
// the VICTOR its old parent counts on (the "zombie" duties), or the old
// root stalls forever with live_ = true and the eventual winner relaunches
// endlessly (the live-lock these tests pin down).  Overruns are forced by
// ID placements that make weak kingdoms grow before strong ones arrive —
// adversarial layouts on paths, stars and dense cores.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "election/kingdom.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

ElectionReport run_with_ids(const Graph& g, std::vector<Uid> uids,
                            KingdomConfig cfg = {}) {
  EngineConfig ec;
  ec.seed = 1;
  ec.max_rounds = 2'000'000;
  ec.congest = CongestMode::Count;
  SyncEngine eng(g, ec);
  eng.set_uids(std::move(uids));
  eng.init_processes(make_kingdom(cfg));
  ElectionReport rep;
  rep.run = eng.run();
  rep.verdict = judge_election(eng);
  return rep;
}

TEST(KingdomStress, SingleNode) {
  const auto rep = run_with_ids(make_path(1), {42});
  EXPECT_TRUE(rep.verdict.unique_leader);
  EXPECT_EQ(rep.run.messages, 0u);
}

TEST(KingdomStress, TwoNodes) {
  const auto rep = run_with_ids(make_path(2), {7, 3});
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST(KingdomStress, AscendingIdsOnPathCascadeOverruns) {
  // Each node's kingdom is overrun by its right neighbour's, which is
  // overrun by the next — the maximal cascade of defections.
  for (const std::size_t n : {8u, 17u, 33u, 64u}) {
    const Graph g = make_path(n);
    std::vector<Uid> ids(n);
    std::iota(ids.begin(), ids.end(), Uid{1});
    const auto rep = run_with_ids(g, ids);
    EXPECT_TRUE(rep.verdict.unique_leader) << "n=" << n;
    EXPECT_TRUE(rep.run.completed) << "n=" << n;
    EXPECT_EQ(rep.run.congest_violations, 0u) << "n=" << n;
  }
}

TEST(KingdomStress, DescendingIdsOnPath) {
  for (const std::size_t n : {8u, 33u}) {
    const Graph g = make_path(n);
    std::vector<Uid> ids(n);
    std::iota(ids.rbegin(), ids.rend(), Uid{1});
    const auto rep = run_with_ids(g, ids);
    EXPECT_TRUE(rep.verdict.unique_leader) << "n=" << n;
  }
}

TEST(KingdomStress, MaxIdHiddenAtPathEnd) {
  // The strongest candidate sits at the far end of a long path behind a
  // dense low-ID core: its waves arrive late everywhere, so almost every
  // node serves weaker expeditions first and must defect mid-flight.
  const Graph g = make_lollipop(8, 20);
  std::vector<Uid> ids(g.n());
  std::iota(ids.begin(), ids.end(), Uid{10});
  // The clique nodes are 0..7; the path ends at the last slot — give it the
  // global maximum, and the clique the next-largest block.
  std::swap(ids[ids.size() - 1], ids[7]);
  const auto rep = run_with_ids(g, ids);
  EXPECT_TRUE(rep.verdict.unique_leader);
  EXPECT_TRUE(rep.run.completed);
}

TEST(KingdomStress, StarWithWeakHub) {
  // The hub (lowest ID) is claimed by every leaf expedition in round 2 and
  // overrun repeatedly as stronger leaf claims arrive.
  const std::size_t n = 24;
  const Graph g = make_star(n);
  std::vector<Uid> ids(n);
  std::iota(ids.begin(), ids.end(), Uid{1});  // hub = 1, leaves ascending
  const auto rep = run_with_ids(g, ids);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST(KingdomStress, BarbellTugOfWar) {
  // Two dense cores fight across a thin bridge; the bridge nodes flip
  // allegiance as each core's phases advance.
  const Graph g = make_barbell(7, 9);
  std::vector<Uid> ids(g.n());
  std::iota(ids.begin(), ids.end(), Uid{1});
  // Put the two largest IDs in opposite cliques (slots 0..6 and last 7).
  std::swap(ids[0], ids[ids.size() - 1]);
  const auto rep = run_with_ids(g, ids);
  EXPECT_TRUE(rep.verdict.unique_leader);
  EXPECT_TRUE(rep.run.completed);
}

class KingdomSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KingdomSeedSweep, AlwaysExactlyOneLeaderAndTerminates) {
  Rng rng(GetParam());
  const std::size_t n = 20 + rng.below(60);
  const std::size_t extra = rng.below(2 * n);
  const Graph g = make_random_connected(n, n - 1 + extra, rng);
  RunOptions opt;
  opt.seed = GetParam() * 7 + 1;
  opt.ids = (GetParam() % 2 == 0) ? IdScheme::RandomFromZ
                                  : IdScheme::RandomPermutation;
  opt.max_rounds = 2'000'000;
  const auto rep = run_election(g, make_kingdom(), opt);
  EXPECT_TRUE(rep.run.completed) << g.summary();
  EXPECT_TRUE(rep.verdict.unique_leader) << g.summary();
  EXPECT_EQ(rep.verdict.undecided, 0u) << g.summary();
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, KingdomSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(KingdomStress, WinnerIsNeverWeakerUnderPermutationIds) {
  // With a doubling schedule the winner need not be the max ID (a fast
  // corner can out-phase it), but SOME node must win, every node must
  // decide, and reruns must agree (determinism).
  Rng rng(77);
  const Graph g = make_random_connected(48, 96, rng);
  RunOptions opt;
  opt.seed = 5;
  opt.ids = IdScheme::RandomPermutation;
  opt.max_rounds = 2'000'000;
  const auto a = run_election(g, make_kingdom(), opt);
  const auto b = run_election(g, make_kingdom(), opt);
  ASSERT_TRUE(a.verdict.unique_leader);
  EXPECT_EQ(a.verdict.leader_slot, b.verdict.leader_slot);
  EXPECT_EQ(a.run.messages, b.run.messages);
  EXPECT_EQ(a.run.rounds, b.run.rounds);
}

TEST(KingdomStress, KnownDiameterOnEveryFamilyShape) {
  Rng rng(81);
  const std::vector<Graph> graphs = {
      make_path(30),      make_cycle(30),          make_star(20),
      make_grid(5, 6),    make_complete(12),       make_hypercube(4),
      make_lollipop(6, 8), make_random_connected(40, 90, rng)};
  for (const auto& g : graphs) {
    const auto d = diameter_exact(g);
    KingdomConfig cfg;
    cfg.known_diameter = std::max<std::uint64_t>(1, d);
    RunOptions opt;
    opt.seed = 13;
    opt.knowledge = Knowledge::of_n_d(g.n(), d);
    opt.max_rounds = 2'000'000;
    const auto rep = run_election(g, make_kingdom(cfg), opt);
    EXPECT_TRUE(rep.verdict.unique_leader) << g.summary();
    EXPECT_TRUE(rep.run.completed) << g.summary();
  }
}

TEST(KingdomStress, MessagesStayWithinMLogNOnAdversarialPath) {
  // The ascending path maximizes defections; the bound must still hold.
  const std::size_t n = 128;
  const Graph g = make_path(n);
  std::vector<Uid> ids(n);
  std::iota(ids.begin(), ids.end(), Uid{1});
  const auto rep = run_with_ids(g, ids);
  ASSERT_TRUE(rep.verdict.unique_leader);
  const double bound =
      20.0 * static_cast<double>(g.m()) * std::log2(static_cast<double>(n));
  EXPECT_LE(static_cast<double>(rep.run.messages), bound);
}

}  // namespace
}  // namespace ule
