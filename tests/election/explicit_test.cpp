#include "election/explicit_elect.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "election/trivial_random.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

struct ExplicitOutcome {
  ElectionReport rep;
  std::set<std::uint64_t> learned;  ///< distinct leader tokens seen
  std::size_t know_count = 0;       ///< nodes with known_leader set
};

ExplicitOutcome run_explicit(const Graph& g, const ProcessFactory& inner,
                             RunOptions opt) {
  EngineConfig cfg;
  cfg.seed = opt.seed;
  cfg.max_rounds = opt.max_rounds;
  cfg.congest = opt.congest;
  SyncEngine eng(g, cfg);
  if (!opt.anonymous) {
    Rng id_rng(opt.seed ^ 0x1D5B1D5B1D5B1D5BULL);
    eng.set_uids(assign_ids(g.n(), opt.ids, id_rng));
  }
  eng.set_knowledge(opt.knowledge);
  eng.init_processes(make_explicit(inner));
  ExplicitOutcome out;
  out.rep.run = eng.run();
  out.rep.verdict = judge_election(eng);
  for (NodeId s = 0; s < g.n(); ++s) {
    const auto* p = dynamic_cast<const ExplicitProcess*>(eng.process(s));
    if (p->known_leader().has_value()) {
      ++out.know_count;
      out.learned.insert(*p->known_leader());
    }
  }
  return out;
}

TEST(ExplicitElect, EveryNodeLearnsTheLeaderFloodMax) {
  Rng rng(11);
  for (const auto& g :
       {make_cycle(16), make_grid(4, 6), make_complete(8),
        make_random_connected(40, 100, rng)}) {
    RunOptions opt;
    opt.seed = 5;
    const auto out = run_explicit(g, make_flood_max(), opt);
    ASSERT_TRUE(out.rep.verdict.unique_leader) << g.summary();
    EXPECT_EQ(out.know_count, g.n()) << g.summary();
    EXPECT_EQ(out.learned.size(), 1u) << g.summary();
  }
}

TEST(ExplicitElect, LearnedTokenIsTheWinnersUid) {
  const Graph g = make_grid(5, 5);
  EngineConfig cfg;
  cfg.seed = 3;
  SyncEngine eng(g, cfg);
  Rng id_rng(17);
  eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
  eng.init_processes(make_explicit(make_flood_max()));
  eng.run();
  const auto verdict = judge_election(eng);
  ASSERT_TRUE(verdict.unique_leader);
  const Uid winner = eng.uid_of(verdict.leader_slot);
  for (NodeId s = 0; s < g.n(); ++s) {
    const auto* p = dynamic_cast<const ExplicitProcess*>(eng.process(s));
    ASSERT_TRUE(p->known_leader().has_value()) << "slot " << s;
    EXPECT_EQ(*p->known_leader(), winner) << "slot " << s;
  }
}

TEST(ExplicitElect, AnnouncementCostsExactlyOneFloodDeterministic) {
  // The wrapper adds exactly deg(L) + sum_{v != L}(deg(v) - 1) = 2m - (n-1)
  // messages on top of a deterministic inner algorithm.
  Rng rng(7);
  const Graph g = make_random_connected(30, 80, rng);
  RunOptions opt;
  opt.seed = 9;
  const auto implicit = run_election(g, make_flood_max(), opt);
  const auto expl = run_explicit(g, make_flood_max(), opt);
  ASSERT_TRUE(implicit.verdict.unique_leader);
  ASSERT_TRUE(expl.rep.verdict.unique_leader);
  const auto announce_msgs = expl.rep.run.messages - implicit.run.messages;
  EXPECT_EQ(announce_msgs, 2 * g.m() - (g.n() - 1));
}

TEST(ExplicitElect, WorksOnAnonymousNetworks) {
  // The identity learned is the winner's random announcement token.
  const Graph g = make_cycle(20);
  LeastElConfig lcfg = LeastElConfig::all_candidates();
  lcfg.tiebreak = LeastElConfig::Tiebreak::Random;
  RunOptions opt;
  opt.anonymous = true;
  opt.seed = 21;
  const auto out = run_explicit(g, make_least_el(lcfg), opt);
  ASSERT_TRUE(out.rep.verdict.unique_leader);
  EXPECT_EQ(out.know_count, g.n());
  EXPECT_EQ(out.learned.size(), 1u);
}

TEST(ExplicitElect, HaltingInnerDoesNotStrandTheAnnouncement) {
  // trivial_random halts instantly at every node; the wrapper must defer
  // those halts until the announcement flood has passed through.
  const Graph g = make_path(24);
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    RunOptions opt;
    opt.seed = seed;
    opt.knowledge = Knowledge::of_n(g.n());
    const auto out = run_explicit(g, make_trivial_random(), opt);
    if (out.rep.verdict.elected == 1) {
      EXPECT_EQ(out.know_count, g.n()) << "seed " << seed;
      EXPECT_EQ(out.learned.size(), 1u) << "seed " << seed;
    } else {
      // No single winner: nothing (or several things) to learn; the run
      // must still terminate, which reaching this line demonstrates.
      EXPECT_TRUE(out.rep.run.completed);
    }
  }
}

TEST(ExplicitElect, ComposesWithKingdom) {
  Rng rng(13);
  const Graph g = make_random_connected(36, 80, rng);
  RunOptions opt;
  opt.seed = 4;
  opt.max_rounds = 500'000;
  const auto out = run_explicit(g, make_kingdom(), opt);
  ASSERT_TRUE(out.rep.verdict.unique_leader);
  EXPECT_EQ(out.know_count, g.n());
}

TEST(ExplicitElect, ComposesWithLeastElVariantA) {
  Rng rng(15);
  const Graph g = make_random_connected(50, 150, rng);
  RunOptions opt;
  opt.seed = 6;
  opt.knowledge = Knowledge::of_n(g.n());
  const auto out =
      run_explicit(g, make_least_el(LeastElConfig::variant_A(g.n())), opt);
  ASSERT_TRUE(out.rep.verdict.unique_leader);
  EXPECT_EQ(out.know_count, g.n());
  EXPECT_EQ(out.learned.size(), 1u);
}

TEST(ExplicitElect, ComposesWithSleepingInnerLasVegas) {
  // The Las Vegas inner algorithm parks itself with sleep_until() between
  // epochs; the wrapper must faithfully relay that wish (and still wake it
  // for real messages), exercising the Sleep branch of the pass-through.
  Rng rng(43);
  const Graph g = make_random_connected(24, 60, rng);
  const auto d = diameter_exact(g);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunOptions opt;
    opt.seed = seed;
    opt.knowledge = Knowledge::of_n_d(g.n(), d);
    const auto out = run_explicit(
        g, make_least_el(LeastElConfig::las_vegas(d)), opt);
    ASSERT_TRUE(out.rep.verdict.unique_leader) << "seed " << seed;
    EXPECT_EQ(out.know_count, g.n()) << "seed " << seed;
  }
}

TEST(ExplicitElect, CongestClean) {
  const Graph g = make_complete(8);
  RunOptions opt;
  opt.seed = 2;
  opt.congest = CongestMode::Count;
  const auto out = run_explicit(g, make_flood_max(), opt);
  ASSERT_TRUE(out.rep.verdict.unique_leader);
  EXPECT_EQ(out.rep.run.congest_violations, 0u);
}

TEST(ExplicitElect, SingleNodeGraph) {
  const Graph g = make_path(1);
  RunOptions opt;
  opt.seed = 1;
  const auto out = run_explicit(g, make_flood_max(), opt);
  EXPECT_TRUE(out.rep.verdict.unique_leader);
  EXPECT_EQ(out.know_count, 1u);
}

}  // namespace
}  // namespace ule
