#include "election/dfs_election.hpp"

#include <gtest/gtest.h>

#include "graphgen/generators.hpp"
#include "net/engine.hpp"
#include "net/wakeup.hpp"

namespace ule {
namespace {

RunOptions dfs_options(std::uint64_t seed) {
  RunOptions opt;
  opt.seed = seed;
  opt.ids = IdScheme::RandomPermutation;  // keep 2^ID delays simulable
  opt.max_rounds = Round{1} << 62;
  return opt;
}

TEST(DfsElection, ElectsMinIdNode) {
  const Graph g = make_cycle(12);
  const auto rep = run_election(g, make_dfs_election(), dfs_options(3));
  ASSERT_TRUE(rep.verdict.unique_leader);
  const Uid min_uid = *std::min_element(rep.uids.begin(), rep.uids.end());
  EXPECT_EQ(rep.uids[rep.verdict.leader_slot], min_uid);
}

TEST(DfsElection, MessagesLinearInM) {
  // Theorem 4.1: <= ~4m messages regardless of topology (simultaneous wake).
  Rng rng(1);
  for (const Graph& g :
       {make_cycle(30), make_complete(12), make_grid(5, 6),
        make_random_connected(40, 160, rng)}) {
    const auto rep = run_election(g, make_dfs_election(), dfs_options(5));
    EXPECT_TRUE(rep.verdict.unique_leader) << g.summary();
    EXPECT_LE(rep.run.messages, 4 * g.m() + 2 * g.n()) << g.summary();
  }
}

TEST(DfsElection, TimeExponentialInMinId) {
  // The paper: time ≈ 4m · 2^{i_min}.  Shifting all ids up by k doubles
  // the running time k times.
  const Graph g = make_path(6);
  std::vector<Round> rounds;
  for (const Uid base : {1u, 2u, 3u}) {
    EngineConfig cfg;
    cfg.max_rounds = Round{1} << 62;
    SyncEngine eng(g, cfg);
    std::vector<Uid> ids(g.n());
    for (NodeId s = 0; s < g.n(); ++s) ids[s] = base + s;
    eng.set_uids(ids);
    eng.init_processes(make_dfs_election());
    const RunResult res = eng.run();
    EXPECT_EQ(res.elected, 1u);
    rounds.push_back(res.rounds);
  }
  EXPECT_GE(rounds[1], rounds[0] * 3 / 2);
  EXPECT_GE(rounds[2], rounds[1] * 3 / 2);
}

TEST(DfsElection, FastForwardMakesItFeasible) {
  // Logical rounds are huge; simulation stays fast because quiet rounds
  // are skipped.  Sanity: logical rounds >> messages.
  const Graph g = make_cycle(10);
  EngineConfig cfg;
  cfg.max_rounds = Round{1} << 62;
  SyncEngine eng(g, cfg);
  std::vector<Uid> ids(g.n());
  for (NodeId s = 0; s < g.n(); ++s) ids[s] = 12 + s;  // min id 12
  eng.set_uids(ids);
  eng.init_processes(make_dfs_election());
  const RunResult res = eng.run();
  EXPECT_EQ(res.elected, 1u);
  EXPECT_GE(res.rounds, (Round{1} << 12));  // ≥ 2^{i_min}
}

TEST(DfsElection, AllLosersDecideNonElected) {
  const Graph g = make_grid(4, 5);
  const auto rep = run_election(g, make_dfs_election(), dfs_options(9));
  EXPECT_TRUE(rep.verdict.unique_leader);
  EXPECT_EQ(rep.verdict.non_elected, g.n() - 1);
  EXPECT_EQ(rep.verdict.undecided, 0u);
}

TEST(DfsElection, AdversarialWakeupWithBroadcast) {
  const Graph g = make_cycle(14);
  DfsConfig dcfg;
  dcfg.wake_broadcast = true;
  RunOptions opt = dfs_options(11);
  opt.wakeup = single_wakeup(g.n(), 5);
  const auto rep = run_election(g, make_dfs_election(dcfg), opt);
  ASSERT_TRUE(rep.verdict.unique_leader);
  const Uid min_uid = *std::min_element(rep.uids.begin(), rep.uids.end());
  EXPECT_EQ(rep.uids[rep.verdict.leader_slot], min_uid);
  // Wakeup flood adds 2m; agents stay within ~4m + wake distance terms.
  EXPECT_LE(rep.run.messages, 6 * g.m() + 2 * g.n() + 20);
}

TEST(DfsElection, StaggeredWakeupStillUniqueLeader) {
  Rng graph_rng(77);
  const Graph g = make_random_connected(25, 60, graph_rng);
  DfsConfig dcfg;
  dcfg.wake_broadcast = true;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RunOptions opt = dfs_options(seed);
    Rng wk(seed * 31);
    opt.wakeup = random_wakeup(g.n(), 10, wk);
    const auto rep = run_election(g, make_dfs_election(dcfg), opt);
    EXPECT_TRUE(rep.verdict.unique_leader) << "seed " << seed;
  }
}

TEST(DfsElection, SequentialIdsWinnerIsSlotOfIdOne) {
  const Graph g = make_star(9);
  RunOptions opt = dfs_options(2);
  opt.ids = IdScheme::Sequential;
  const auto rep = run_election(g, make_dfs_election(), opt);
  ASSERT_TRUE(rep.verdict.unique_leader);
  EXPECT_EQ(rep.uids[rep.verdict.leader_slot], 1u);
}

}  // namespace
}  // namespace ule
