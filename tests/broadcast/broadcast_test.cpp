#include "broadcast/broadcast.hpp"

#include <gtest/gtest.h>

#include "graphgen/dumbbell.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"

namespace ule {
namespace {

TEST(Broadcast, ReachesEveryone) {
  for (const Graph& g : {make_cycle(20), make_grid(4, 5), make_star(15)}) {
    const auto rep = run_broadcast(g, 0, 1);
    EXPECT_TRUE(rep.all_informed) << g.summary();
  }
}

TEST(Broadcast, TimeEqualsEccentricity) {
  const Graph g = make_path(12);
  const auto rep = run_broadcast(g, 0, 1);
  EXPECT_TRUE(rep.all_informed);
  // Flood reaches distance d at round d; echoes take as long again.
  EXPECT_GE(rep.rounds_total, 11u);
  EXPECT_LE(rep.rounds_total, 3 * 11u + 3);
}

TEST(Broadcast, MessagesLinearInM) {
  Rng rng(1);
  const Graph g = make_random_connected(50, 300, rng);
  const auto rep = run_broadcast(g, 3, 2);
  EXPECT_TRUE(rep.all_informed);
  // One forward + one echo per direction at most.
  EXPECT_LE(rep.messages_total, 4 * g.m());
  EXPECT_GE(rep.messages_total, g.m());  // every edge carries something
}

TEST(Broadcast, MajorityCountsFewerMessagesThanTotal) {
  const Graph g = make_path(30);
  const auto rep = run_broadcast(g, 0, 5);
  EXPECT_TRUE(rep.all_informed);
  EXPECT_LT(rep.round_majority, rep.rounds_total);
  EXPECT_LT(rep.messages_majority, rep.messages_total);
  EXPECT_GT(rep.messages_majority, 0u);
}

TEST(Broadcast, MajorityOnDumbbellStillCostsOmegaM) {
  // Corollary 3.12: even majority broadcast pays Θ(m) on dumbbells —
  // reaching > n/2 nodes forces a bridge crossing, and reaching the bridge
  // costs Ω(m1) inside the source's clique side.
  for (const std::size_t m : {30u, 90u, 200u}) {
    const Dumbbell d = make_dumbbell(m / 2, m, 0, 1);
    const auto rep = run_broadcast(d.graph, 0, 3);
    EXPECT_TRUE(rep.all_informed);
    const double side_m = (static_cast<double>(d.graph.m()) - 2) / 2;
    EXPECT_GE(static_cast<double>(rep.messages_majority), 0.8 * side_m)
        << "m=" << m;
  }
}

TEST(Broadcast, SourceDetectsCompletion) {
  const Graph g = make_cycle(16);
  EngineConfig cfg;
  cfg.seed = 1;
  SyncEngine eng(g, cfg);
  eng.init_processes(make_flood_broadcast(4));
  eng.run();
  const auto* src = dynamic_cast<const FloodBroadcastProcess*>(eng.process(4));
  EXPECT_NE(src->complete_round(), kRoundForever);
  for (NodeId s = 0; s < g.n(); ++s) {
    const auto* p = dynamic_cast<const FloodBroadcastProcess*>(eng.process(s));
    EXPECT_TRUE(p->informed());
    EXPECT_LE(p->informed_round(), hop_distance(g, 4, s) + 1);
  }
}

}  // namespace
}  // namespace ule
