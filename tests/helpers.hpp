// Shared fixtures for the test suite: a registry of graph families with
// exactly known diameters, used by the parameterized cross-algorithm tests.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graphgen/clique_cycle.hpp"
#include "graphgen/dumbbell.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "graphgen/path_of_cliques.hpp"
#include "net/graph.hpp"
#include "net/rng.hpp"

namespace ule::testing {

struct Family {
  std::string name;
  Graph graph;
  std::uint32_t diameter = 0;  ///< exact
};

/// Small-to-medium graphs covering every structural regime the paper's
/// algorithms care about: sparse/dense, low/high diameter, symmetric/skewed.
inline std::vector<Family> standard_families() {
  std::vector<Family> fams;
  auto add = [&fams](std::string name, Graph g) {
    const std::uint32_t d = diameter_exact(g);
    fams.push_back(Family{std::move(name), std::move(g), d});
  };

  Rng rng(0xFA417ULL);
  add("cycle24", make_cycle(24));
  add("path17", make_path(17));
  add("star16", make_star(16));
  add("complete12", make_complete(12));
  add("bipartite5x7", make_complete_bipartite(5, 7));
  add("grid4x6", make_grid(4, 6));
  add("torus4x4", make_torus(4, 4));
  add("hypercube4", make_hypercube(4));
  add("tree26", make_balanced_tree(26, 2));
  add("lollipop8+10", make_lollipop(8, 10));
  add("barbell6-5", make_barbell(6, 5));
  add("gnm40-100", make_random_connected(40, 100, rng));
  add("gnm30-60", make_random_connected(30, 60, rng));
  add("regular20-4", make_random_regular(20, 4, rng));
  add("dumbbell16-30", make_dumbbell(16, 30, 0, 5).graph);
  add("cliquecycle24-8", make_clique_cycle(24, 8).graph);
  add("cliquepath6x4", make_path_of_cliques(6, 4));
  return fams;
}

/// A couple of larger graphs for asymptotic property checks.
inline std::vector<Family> large_families() {
  std::vector<Family> fams;
  auto add = [&fams](std::string name, Graph g) {
    const std::uint32_t d = diameter_exact(g);
    fams.push_back(Family{std::move(name), std::move(g), d});
  };
  Rng rng(0xB16ULL);
  add("gnm300-1200", make_random_connected(300, 1200, rng));
  add("cycle200", make_cycle(200));
  add("grid12x12", make_grid(12, 12));
  add("regular128-6", make_random_regular(128, 6, rng));
  return fams;
}

}  // namespace ule::testing
