// Unit tests for the log-log least-squares regressor (lab/fit.hpp): exact
// power laws must be recovered to rounding, polylog-inflated curves must fit
// the slopes the calibration in scenario/registry.cpp relies on, and the
// confidence band must cover deterministic perturbations.

#include "lab/fit.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace ule::lab {
namespace {

std::vector<double> ladder() { return {64, 128, 256, 512, 1024, 2048}; }

TEST(FitTest, RecoversExactPowerLaw) {
  std::vector<double> x = ladder(), y;
  for (const double v : x) y.push_back(3.0 * std::pow(v, 1.7));
  const PowerFit f = fit_power_law(x, y);
  EXPECT_NEAR(f.exponent, 1.7, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-6);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
  EXPECT_NEAR(f.stderr_exponent, 0.0, 1e-9);
  EXPECT_EQ(f.points, x.size());
}

TEST(FitTest, RecoversConstantAndLinear) {
  std::vector<double> x = ladder();
  const PowerFit c = fit_power_law(x, std::vector<double>(x.size(), 42.0));
  EXPECT_NEAR(c.exponent, 0.0, 1e-12);
  const PowerFit l = fit_power_law(x, x);
  EXPECT_NEAR(l.exponent, 1.0, 1e-12);
}

// Θ(n log n): local slope 1 + 1/ln n ≈ 1.1–1.2 over lab ladders.  The
// registry's tol=0.3+ bands for O(m log n) protocols depend on this.
TEST(FitTest, LogFactorInflatesSlopeAsExpected) {
  std::vector<double> x = ladder(), y;
  for (const double v : x) y.push_back(v * std::log(v));
  const PowerFit f = fit_power_law(x, y);
  EXPECT_GT(f.exponent, 1.05);
  EXPECT_LT(f.exponent, 1.25);
  EXPECT_GT(f.r2, 0.999);
}

// ~O(√n·log^{3/2} n), the KPPRT sublinear shape: local slope
// 0.5 + 1.5/ln n ≈ 0.7–0.9 over lab ladders — well separated from linear.
TEST(FitTest, SublinearPolylogStaysBelowLinear) {
  std::vector<double> x = ladder(), y;
  for (const double v : x) y.push_back(std::sqrt(v) * std::pow(std::log(v), 1.5));
  const PowerFit f = fit_power_law(x, y);
  EXPECT_GT(f.exponent, 0.65);
  EXPECT_LT(f.exponent, 0.95);
}

TEST(FitTest, ConfidenceBandCoversPerturbation) {
  // Deterministic ±8% multiplicative wobble around x^2.
  std::vector<double> x = ladder(), y;
  for (std::size_t i = 0; i < x.size(); ++i)
    y.push_back(x[i] * x[i] * (i % 2 == 0 ? 1.08 : 0.92));
  const PowerFit f = fit_power_law(x, y);
  EXPECT_GT(f.stderr_exponent, 0.0);
  EXPECT_LE(std::abs(f.exponent - 2.0), f.confidence())
      << "fitted " << f.exponent << " +- " << f.confidence();
  EXPECT_LT(f.r2, 1.0);
  EXPECT_GT(f.r2, 0.99);
}

TEST(FitTest, TwoPointsFitExactlyWithZeroStderr) {
  const PowerFit f = fit_power_law({10, 100}, {5, 500});
  EXPECT_NEAR(f.exponent, 2.0, 1e-12);
  EXPECT_EQ(f.stderr_exponent, 0.0);  // k <= 2: no residual dof
  EXPECT_EQ(f.confidence(), 0.0);
}

// --- diameter-axis synthetics ----------------------------------------------
// The D-ladder fits run on exactly these x values (lab default D-ladder);
// the synthetics mirror the measured shapes so the registry's declared bands
// are backed by unit-level evidence, not only by campaign runs.

std::vector<double> d_ladder() { return {8, 16, 32, 64, 128}; }

TEST(FitTest, RecoversLinearDiameterCurve) {
  // rounds = 2D: pure O(D) time recovers slope 1 exactly.
  std::vector<double> x = d_ladder(), y;
  for (const double d : x) y.push_back(2 * d);
  const PowerFit f = fit_power_law(x, y);
  EXPECT_NEAR(f.exponent, 1.0, 1e-12);
  EXPECT_TRUE(exponent_in_band(1.0, 0.3, f));
}

TEST(FitTest, AdditiveConstantDeflatesTheDiameterSlopePredictably) {
  // rounds = 2D + 10 (pacing/echo constants): the local slope sags below 1
  // but stays inside the calibrated 1.0 +- 0.3 band the O(D) protocols
  // declare; a band tighter than the deflation would misfire.
  std::vector<double> x = d_ladder(), y;
  for (const double d : x) y.push_back(2 * d + 10);
  const PowerFit f = fit_power_law(x, y);
  EXPECT_GT(f.exponent, 0.8);
  EXPECT_LT(f.exponent, 1.0);
  EXPECT_TRUE(exponent_in_band(1.0, 0.3, f));
}

TEST(FitTest, RejectsConstantCurveDoctoredIntoALinearBand) {
  // A protocol whose rounds do NOT grow with D must fail an O(D) band: the
  // near-zero widening only applies to near-zero EXPECTED exponents, never
  // to the fitted value, so a flat curve cannot sneak into a linear band.
  std::vector<double> x = d_ladder();
  const PowerFit flat = fit_power_law(x, std::vector<double>(x.size(), 37.0));
  EXPECT_NEAR(flat.exponent, 0.0, 1e-12);
  EXPECT_EQ(effective_tolerance(1.0, 0.3, flat), 0.3);
  EXPECT_FALSE(exponent_in_band(1.0, 0.3, flat));

  // And the converse: a genuinely linear curve fails a constant band even
  // with the widened path — its fit is exact, so the confidence is zero.
  const PowerFit linear = fit_power_law(x, x);
  EXPECT_EQ(effective_tolerance(0.0, 0.15, linear), 0.15);
  EXPECT_FALSE(exponent_in_band(0.0, 0.15, linear));
}

TEST(FitTest, NearZeroBandWidensByTheFitsOwnConfidence) {
  // Flat-but-noisy (integer round counts wobbling by one): the slope is
  // small but nonzero, and its confidence is comparable.  Pick the declared
  // tolerance between |slope| - confidence and |slope|: the raw band check
  // rejects, the near-zero path accepts.
  const std::vector<double> x = d_ladder();
  const std::vector<double> y = {7, 6, 8, 7, 9};
  const PowerFit f = fit_power_law(x, y);
  ASSERT_GT(std::abs(f.exponent), 0.0);
  ASSERT_GT(f.confidence(), 0.0);
  const double tol = std::abs(f.exponent) - f.confidence() / 2;
  ASSERT_GT(tol, 0.0);
  EXPECT_GT(std::abs(f.exponent - 0.0), tol);  // raw band check would reject
  EXPECT_EQ(effective_tolerance(0.0, tol, f), tol + f.confidence());
  EXPECT_TRUE(exponent_in_band(0.0, tol, f));  // widened path accepts

  // The widening is gated on the EXPECTED exponent, bounded by the
  // kNearZeroExponent threshold.
  EXPECT_EQ(effective_tolerance(kNearZeroExponent + 0.01, tol, f), tol);
  EXPECT_EQ(effective_tolerance(-kNearZeroExponent, tol, f),
            tol + f.confidence());
}

TEST(FitTest, RejectsDegenerateInput) {
  EXPECT_THROW(fit_power_law({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1}, {1}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1, 2}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({-1, 2}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({5, 5}, {1, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace ule::lab
