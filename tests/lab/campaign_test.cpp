// Campaign-level tests for the Complexity Lab: ladder conventions on both
// axes, the replicate-seed discipline, expectation checking against a
// doctored registry, and the headline determinism guarantee — a campaign
// rerun from the same master seed yields byte-identical BENCH_lab.json rows
// (modulo wall-clock fields) at every worker count, on the n-ladder and the
// diameter ladder alike.

#include "lab/campaign.hpp"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "lab/report.hpp"
#include "scenario/registry.hpp"

namespace ule::lab {
namespace {

CampaignConfig tiny_config() {
  CampaignConfig cfg;
  cfg.master_seed = 99991;
  cfg.replicates = 2;
  cfg.protocols = {"dfs", "flood_max"};
  cfg.families = {"ring"};
  cfg.ladder = {8, 16, 32};
  cfg.threads = 1;
  return cfg;
}

TEST(CampaignTest, TinyCampaignSweepsAndFits) {
  const CampaignResult res = run_campaign(default_protocols(),
                                          default_families(), tiny_config());
  ASSERT_EQ(res.curves.size(), 2u);  // dfs x ring, flood_max x ring
  EXPECT_EQ(res.total_runs, 2u * 3u * 2u);
  for (const CurveResult& c : res.curves) {
    EXPECT_EQ(c.family, "ring");
    ASSERT_EQ(c.cells.size(), 3u);
    for (std::size_t i = 0; i < c.cells.size(); ++i) {
      const CellResult& cell = c.cells[i];
      EXPECT_EQ(cell.m, cell.n);  // a ring has n edges
      EXPECT_EQ(cell.diameter, cell.n / 2);
      EXPECT_EQ(cell.replicates, 2u);
      EXPECT_TRUE(cell.violations.empty())
          << c.protocol << " n=" << cell.n << ": " << cell.violations[0];
      EXPECT_GE(cell.messages.max, cell.messages.p95);
      EXPECT_GE(cell.messages.p95, cell.messages.median);
      EXPECT_GT(cell.rounds.median, 0u);
      if (i > 0) {
        EXPECT_GT(cell.n, c.cells[i - 1].n);
      }
    }
    EXPECT_FALSE(c.fits.empty());
    for (const FitOutcome& f : c.fits) EXPECT_EQ(f.fit.points, 3u);
  }
}

CampaignConfig diameter_config() {
  CampaignConfig cfg;
  cfg.master_seed = 424243;
  cfg.replicates = 2;
  cfg.protocols = {"flood_max"};
  cfg.families = {"cliquepath"};
  cfg.d_ladder = {8, 16, 32};
  cfg.nominal_n = 64;
  cfg.threads = 1;
  return cfg;
}

TEST(CampaignTest, DiameterCampaignSweepsTheDeclaredAxis) {
  const CampaignResult res = run_campaign(default_protocols(),
                                          default_families(),
                                          diameter_config());
  ASSERT_EQ(res.curves.size(), 1u);
  const CurveResult& c = res.curves[0];
  EXPECT_EQ(c.protocol, "flood_max");
  EXPECT_EQ(c.family, "cliquepath");
  EXPECT_EQ(c.axis, "diameter");
  ASSERT_EQ(c.cells.size(), 3u);
  std::uint64_t expect_d = 8;
  for (const CellResult& cell : c.cells) {
    // The convention is exact: the measured diameter IS the rung.
    EXPECT_EQ(cell.diameter, expect_d);
    // The total size stays pinned near the nominal while D quadruples.
    EXPECT_GE(cell.n, 48u);
    EXPECT_LE(cell.n, 80u);
    EXPECT_TRUE(cell.violations.empty())
        << "D=" << cell.diameter << ": " << cell.violations[0];
    expect_d *= 2;
  }
  ASSERT_FALSE(c.fits.empty());
  for (const FitOutcome& f : c.fits) {
    EXPECT_EQ(f.expect.axis, "diameter");
    EXPECT_EQ(f.fit.points, 3u);
    // Rounds grow with D while n is fixed — the whole point of the axis.
    EXPECT_GT(f.fit.exponent, 0.3);
  }
}

TEST(CampaignTest, DiameterCampaignIsByteIdenticalAcrossWorkerCounts) {
  // The same convention the n-ladder pins, on the new axis: worker counts
  // {1, 2, hardware} must serialize identical rows (modulo wall clocks).
  CampaignConfig cfg = diameter_config();
  cfg.threads = 1;
  const std::string rows_1 = bench_json(
      run_campaign(default_protocols(), default_families(), cfg),
      /*include_wall=*/false);
  cfg.threads = 2;
  const std::string rows_2 = bench_json(
      run_campaign(default_protocols(), default_families(), cfg),
      /*include_wall=*/false);
  cfg.threads = 0;  // hardware concurrency
  const std::string rows_hw = bench_json(
      run_campaign(default_protocols(), default_families(), cfg),
      /*include_wall=*/false);
  EXPECT_EQ(rows_1, rows_2);
  EXPECT_EQ(rows_1, rows_hw);
  EXPECT_NE(rows_1.find("\"axis\": \"diameter\""), std::string::npos);
}

TEST(CampaignTest, DiameterAxisWithoutConventionIsAConfigurationError) {
  // Declaring the diameter axis on a family without a diameter-ladder
  // convention must throw, not silently sweep the wrong thing.
  ProtocolInfo p = default_protocols().at("flood_max");
  p.growth = {{"ring", "rounds", 1.0, 0.3, "bogus", "diameter"}};
  ProtocolRegistry reg;
  reg.add(std::move(p));
  EXPECT_THROW(run_campaign(reg, default_families(), diameter_config()),
               std::invalid_argument);

  // So must an axis name outside {n, diameter}.
  ProtocolInfo q = default_protocols().at("flood_max");
  q.growth = {{"ring", "rounds", 1.0, 0.3, "bogus", "edges"}};
  ProtocolRegistry reg2;
  reg2.add(std::move(q));
  CampaignConfig cfg = diameter_config();
  cfg.families = {"ring"};
  EXPECT_THROW(run_campaign(reg2, default_families(), cfg),
               std::invalid_argument);
}

TEST(CampaignTest, RerunIsByteIdenticalAcrossWorkerCounts) {
  CampaignConfig cfg = tiny_config();
  cfg.threads = 1;
  const CampaignResult a =
      run_campaign(default_protocols(), default_families(), cfg);
  cfg.threads = 3;
  const CampaignResult b =
      run_campaign(default_protocols(), default_families(), cfg);

  const std::string rows_a = bench_json(a, /*include_wall=*/false);
  const std::string rows_b = bench_json(b, /*include_wall=*/false);
  EXPECT_EQ(rows_a, rows_b);

  // A different master seed must actually change the sampled space.
  cfg.master_seed = 777;
  const CampaignResult c =
      run_campaign(default_protocols(), default_families(), cfg);
  EXPECT_NE(rows_a, bench_json(c, /*include_wall=*/false));
}

TEST(CampaignTest, DoctoredExpectationFailsTheCampaign) {
  // Clone a registered protocol but declare an absurd growth exponent: the
  // campaign must flag exactly that fit and report not-ok.
  ProtocolInfo p = default_protocols().at("dfs");
  p.growth = {{"ring", "rounds", 3.0, 0.05, "absurd cubic claim"}};
  ProtocolRegistry reg;
  reg.add(std::move(p));

  CampaignConfig cfg = tiny_config();
  cfg.protocols.clear();
  cfg.families.clear();
  const CampaignResult res = run_campaign(reg, default_families(), cfg);
  ASSERT_EQ(res.curves.size(), 1u);
  ASSERT_EQ(res.curves[0].fits.size(), 1u);
  EXPECT_FALSE(res.curves[0].fits[0].pass);
  EXPECT_EQ(res.failed_fits(), 1u);
  EXPECT_FALSE(res.ok());
}

TEST(CampaignTest, EmptyCurveSelectionIsAConfigurationError) {
  // A filter that matches nothing (typo, or a protocol with no declared
  // growth bands) must throw, not report vacuous success.
  CampaignConfig cfg = tiny_config();
  cfg.protocols = {"no_such_protocol"};
  EXPECT_THROW(run_campaign(default_protocols(), default_families(), cfg),
               std::invalid_argument);
  cfg = tiny_config();
  cfg.protocols = {"clustering"};  // registered, but declares no bands
  EXPECT_THROW(run_campaign(default_protocols(), default_families(), cfg),
               std::invalid_argument);
}

TEST(CampaignTest, CellsRecordActualInstanceSize) {
  // The grid convention squares the nominal rung: n=100 -> 10x10.  Cells and
  // fits must use the built instance's node count, not the nominal value.
  ProtocolInfo p = default_protocols().at("flood_max");
  p.growth = {{"grid", "rounds", 0.5, 0.3, "O(D) = O(side) on a square grid"}};
  ProtocolRegistry reg;
  reg.add(std::move(p));

  CampaignConfig cfg;
  cfg.master_seed = 5;
  cfg.replicates = 1;
  cfg.threads = 1;
  cfg.ladder = {24, 100};
  const CampaignResult res = run_campaign(reg, default_families(), cfg);
  ASSERT_EQ(res.curves.size(), 1u);
  ASSERT_EQ(res.curves[0].cells.size(), 2u);
  EXPECT_EQ(res.curves[0].cells[0].n, 16u);   // isqrt(24) -> 4x4
  EXPECT_EQ(res.curves[0].cells[1].n, 100u);  // 10x10
}

TEST(CampaignTest, DegenerateLadderSkipsTheFitInsteadOfThrowing) {
  // Grid rounding folds nearby rungs onto the same square: {10, 15} both
  // become 3x3 (side = max(isqrt(n), 3)), so the fit's x axis has zero
  // dynamic range and fit_power_law would throw std::invalid_argument.  The
  // campaign must pre-check the range, emit a skipped fit with a reason, and
  // keep the campaign green — a degenerate ladder is a configuration note,
  // not evidence about growth.
  ProtocolInfo p = default_protocols().at("flood_max");
  p.growth = {{"grid", "rounds", 0.5, 0.3, "O(D) = O(side) on a square grid"}};
  ProtocolRegistry reg;
  reg.add(std::move(p));

  CampaignConfig cfg;
  cfg.master_seed = 5;
  cfg.replicates = 1;
  cfg.threads = 1;
  cfg.ladder = {10, 15};
  const CampaignResult res = run_campaign(reg, default_families(), cfg);
  ASSERT_EQ(res.curves.size(), 1u);
  ASSERT_EQ(res.curves[0].cells.size(), 2u);
  EXPECT_EQ(res.curves[0].cells[0].n, 9u);
  EXPECT_EQ(res.curves[0].cells[1].n, 9u);
  ASSERT_EQ(res.curves[0].fits.size(), 1u);
  const FitOutcome& f = res.curves[0].fits[0];
  EXPECT_TRUE(f.skipped);
  EXPECT_TRUE(f.pass);  // skipped ≠ failed
  EXPECT_NE(f.reason.find("zero dynamic range"), std::string::npos)
      << f.reason;
  EXPECT_EQ(res.failed_fits(), 0u);
  EXPECT_TRUE(res.ok());
  // The skipped fit serializes with its reason instead of an exponent, in
  // both report formats.
  const std::string json = bench_json(res, /*include_wall=*/false);
  EXPECT_NE(json.find("\"skipped\": true"), std::string::npos);
  EXPECT_EQ(json.find("\"exponent\""), std::string::npos);
  const std::string md = complexity_markdown(res);
  EXPECT_NE(md.find("skipped (zero dynamic range"), std::string::npos);
}

TEST(CampaignTest, MetricsFlagCarriesSnapshotsOnEveryCell) {
  CampaignConfig cfg = tiny_config();
  cfg.metrics = true;
  const CampaignResult res = run_campaign(default_protocols(),
                                          default_families(), cfg);
  for (const CurveResult& c : res.curves)
    for (const CellResult& cell : c.cells) {
      EXPECT_TRUE(cell.has_metrics) << c.protocol << " n=" << cell.n;
      // Replicate-0 telemetry agrees with the aggregated counters: one gauge
      // sample per executed round, and a non-trivial engine.messages count.
      EXPECT_GT(cell.metrics.active_set.samples, 0u);
    }
  // The snapshots flatten into mx_* row fields; the metrics-free rows of the
  // same campaign stay byte-identical (the trend gate only compares fields
  // present in both documents, but the cheap invariant to pin here is that
  // turning metrics on only ADDS fields).
  const std::string with = bench_json(res, /*include_wall=*/false);
  EXPECT_NE(with.find("\"mx_engine.messages\""), std::string::npos);
  cfg.metrics = false;
  const CampaignResult bare = run_campaign(default_protocols(),
                                           default_families(), cfg);
  EXPECT_EQ(bench_json(bare, /*include_wall=*/false).find("\"mx_"),
            std::string::npos);
}

TEST(CampaignTest, LadderParamsConventions) {
  const FamilyRegistry& fams = default_families();
  EXPECT_EQ(ladder_params(fams.at("ring"), 64),
            (ScenarioParams{{"n", 64}}));
  EXPECT_EQ(ladder_params(fams.at("gnm"), 100),
            (ScenarioParams{{"n", 100}, {"m", 300}}));
  // gnm at tiny n clamps m to the full graph.
  EXPECT_EQ(ladder_params(fams.at("gnm"), 4),
            (ScenarioParams{{"n", 4}, {"m", 6}}));
  EXPECT_EQ(ladder_params(fams.at("tree"), 50),
            (ScenarioParams{{"n", 50}, {"arity", 2}}));
  EXPECT_EQ(ladder_params(fams.at("grid"), 100),
            (ScenarioParams{{"rows", 10}, {"cols", 10}}));
  EXPECT_EQ(ladder_params(fams.at("hypercube"), 64),
            (ScenarioParams{{"dim", 6}}));
  EXPECT_EQ(ladder_params(fams.at("bipartite"), 10),
            (ScenarioParams{{"a", 5}, {"b", 5}}));
  EXPECT_THROW(ladder_params(fams.at("dumbbell"), 64), std::invalid_argument);
  // cliquepath is diameter-ladder-only: its size splits over two params with
  // no canonical n-ladder shape.
  EXPECT_THROW(ladder_params(fams.at("cliquepath"), 64),
               std::invalid_argument);
}

TEST(CampaignTest, DefaultDiameterLaddersRespectConventions) {
  const FamilyRegistry& fams = default_families();
  std::size_t with_convention = 0;
  for (const FamilyInfo& fam : fams.all()) {
    if (!fam.diameter_ladder.has_value()) {
      EXPECT_THROW(default_diameter_ladder(fam, false, 256),
                   std::invalid_argument)
          << fam.name;
      continue;
    }
    ++with_convention;
    for (const bool quick : {true, false}) {
      const std::uint64_t nominal = default_nominal_n(quick);
      const auto ladder = default_diameter_ladder(fam, quick, nominal);
      ASSERT_GE(ladder.size(), 2u) << fam.name;
      for (const std::uint64_t d : ladder) {
        EXPECT_GE(d, fam.diameter_ladder->min_d) << fam.name;
        EXPECT_LE(d, fam.diameter_ladder->max_d) << fam.name;
        EXPECT_LE(d, nominal / 2) << fam.name;
        // Rung params stay within the family's declared ParamSpec ranges —
        // otherwise run_scenario rejects the campaign's own scenarios.
        const DiameterRung rung = fam.diameter_ladder->rung(nominal, d);
        ASSERT_EQ(rung.params.size(), fam.params.size()) << fam.name;
        for (std::size_t i = 0; i < rung.params.size(); ++i) {
          EXPECT_EQ(rung.params[i].first, fam.params[i].name) << fam.name;
          EXPECT_GE(rung.params[i].second, fam.params[i].lo) << fam.name;
          EXPECT_LE(rung.params[i].second, fam.params[i].hi) << fam.name;
        }
        EXPECT_GE(rung.diameter, d) << fam.name;  // rounding never shrinks D
      }
    }
  }
  // cliquepath, barbell, cliquecycle at least.
  EXPECT_GE(with_convention, 3u);
}

TEST(CampaignTest, DefaultLaddersRespectFamilyRanges) {
  const FamilyRegistry& fams = default_families();
  for (const bool quick : {true, false}) {
    for (const char* name : {"ring", "complete", "gnm"}) {
      const FamilyInfo& fam = fams.at(name);
      const auto ladder = default_ladder(fam, quick);
      ASSERT_GE(ladder.size(), 2u) << name;
      for (const std::uint64_t n : ladder) {
        const ScenarioParams ps = ladder_params(fam, n);
        // Size param within the family's declared range.
        for (std::size_t i = 0; i < fam.params.size(); ++i) {
          EXPECT_GE(ps[i].second, fam.params[i].lo) << name << " n=" << n;
          EXPECT_LE(ps[i].second, fam.params[i].hi) << name << " n=" << n;
        }
      }
    }
  }
}

TEST(CampaignTest, ReplicateSeedsAreDomainSeparated) {
  const std::uint64_t a = replicate_seed(1, "dfs", "ring", "n", 64, 0);
  EXPECT_NE(a, replicate_seed(1, "dfs", "ring", "n", 64, 1));
  EXPECT_NE(a, replicate_seed(1, "dfs", "ring", "n", 128, 0));
  EXPECT_NE(a, replicate_seed(1, "flood_max", "ring", "n", 64, 0));
  EXPECT_NE(a, replicate_seed(1, "dfs", "path", "n", 64, 0));
  EXPECT_NE(a, replicate_seed(2, "dfs", "ring", "n", 64, 0));
  // The axis participates: an n-rung and a D-rung of the same value never
  // share coins.
  EXPECT_NE(a, replicate_seed(1, "dfs", "ring", "diameter", 64, 0));
  EXPECT_EQ(a, replicate_seed(1, "dfs", "ring", "n", 64, 0));
}

TEST(CampaignTest, GeneratedMarkdownIsWellFormed) {
  const CampaignResult res = run_campaign(default_protocols(),
                                          default_families(), tiny_config());
  const std::string md = complexity_markdown(res);
  EXPECT_NE(md.find("# Empirical complexity"), std::string::npos);
  EXPECT_NE(md.find("`dfs` × ring [n]"), std::string::npos);
  EXPECT_NE(md.find("| protocol | family | axis | metric |"),
            std::string::npos);

  const std::string reg =
      registry_markdown(default_protocols(), default_families());
  EXPECT_NE(reg.find("GENERATED FILE"), std::string::npos);
  for (const ProtocolInfo& p : default_protocols().all())
    EXPECT_NE(reg.find("`" + p.name + "`"), std::string::npos) << p.name;
  for (const FamilyInfo& f : default_families().all())
    EXPECT_NE(reg.find("`" + f.name + "`"), std::string::npos) << f.name;
}

}  // namespace
}  // namespace ule::lab
