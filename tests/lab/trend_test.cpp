// The BENCH_lab.json trend gate (lab/trend.hpp): identical campaigns show no
// drift, wall-clock fields never count, and doctored documents — an exponent
// nudged out of tolerance, a counter statistic off by one, a dropped row —
// fail the comparison.  This is the in-test demonstration of the CI gate:
// "CI fails on a doctored exponent drift" without actually breaking CI.

#include "lab/trend.hpp"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "lab/campaign.hpp"
#include "lab/report.hpp"
#include "scenario/registry.hpp"

namespace ule::lab {
namespace {

CampaignConfig gate_config() {
  CampaignConfig cfg;
  cfg.master_seed = 5417;
  cfg.replicates = 2;
  cfg.protocols = {"dfs", "flood_max"};
  cfg.families = {"ring", "cliquepath"};
  cfg.d_ladder = {8, 16, 32};
  cfg.nominal_n = 64;
  cfg.ladder = {8, 16, 32};
  cfg.threads = 1;
  return cfg;
}

/// The document a CI run would diff against the committed baseline.
std::string gate_document() {
  static const std::string doc = bench_json(
      run_campaign(default_protocols(), default_families(), gate_config()));
  return doc;
}

/// Replace the first `"key": <number>` after `anchor` with `replacement`.
std::string doctor(const std::string& doc, const std::string& key,
                   const std::string& replacement,
                   const std::string& anchor = "") {
  std::size_t from = 0;
  if (!anchor.empty()) {
    from = doc.find(anchor);
    EXPECT_NE(from, std::string::npos) << anchor;
  }
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = doc.find(needle, from);
  EXPECT_NE(at, std::string::npos) << key;
  const std::size_t start = at + needle.size();
  std::size_t end = start;
  while (end < doc.size() && doc[end] != ',' && doc[end] != '}') ++end;
  return doc.substr(0, start) + replacement + doc.substr(end);
}

TEST(TrendTest, IdenticalDocumentsShowNoDrift) {
  const TrendReport rep = compare_lab_trend(gate_document(), gate_document());
  EXPECT_TRUE(rep.ok()) << rep.errors[0];
  EXPECT_GT(rep.cells_compared, 0u);
  EXPECT_GT(rep.fits_compared, 0u);
  EXPECT_TRUE(rep.notes.empty());
}

TEST(TrendTest, RerunFromTheSameSeedShowsNoDrift) {
  // The real CI shape: baseline and current come from independent campaign
  // executions (only wall clocks may differ; everything compared is a pure
  // function of the master seed).
  const std::string again = bench_json(
      run_campaign(default_protocols(), default_families(), gate_config()));
  const TrendReport rep = compare_lab_trend(gate_document(), again);
  EXPECT_TRUE(rep.ok()) << rep.errors[0];
}

TEST(TrendTest, WallClockFieldsAreIgnored) {
  // A baseline with wall statistics vs a current without (and vice versa)
  // still compares clean — wall clocks are machine-specific by design.
  const CampaignResult res =
      run_campaign(default_protocols(), default_families(), gate_config());
  const std::string with_wall = bench_json(res, /*include_wall=*/true);
  const std::string without_wall = bench_json(res, /*include_wall=*/false);
  EXPECT_NE(with_wall, without_wall);
  EXPECT_TRUE(compare_lab_trend(with_wall, without_wall).ok());
  EXPECT_TRUE(compare_lab_trend(without_wall, with_wall).ok());

  const std::string slow = doctor(with_wall, "wall_ms_median", "99999.9");
  EXPECT_TRUE(compare_lab_trend(with_wall, slow).ok());
}

TEST(TrendTest, DoctoredExponentDriftFails) {
  // The acceptance demonstration: nudge one fitted exponent past the
  // tolerance and the gate must fail, naming the curve.
  const std::string doc = gate_document();
  const std::string drifted = doctor(doc, "exponent", "2.71", "\"kind\": \"fit\"");
  const TrendReport rep = compare_lab_trend(doc, drifted);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors[0].find("exponent drifted"), std::string::npos)
      << rep.errors[0];
  EXPECT_NE(rep.errors[0].find("fit "), std::string::npos);

  // Sub-tolerance wiggle (cross-platform libm noise) is NOT drift: the
  // default exponent tolerance absorbs it.
  const std::string doc2 = bench_json(
      run_campaign(default_protocols(), default_families(), gate_config()));
  TrendConfig strict;
  strict.exponent_tol = 0.0;
  EXPECT_TRUE(compare_lab_trend(doc, doc2, strict).ok());
}

TEST(TrendTest, DoctoredCounterStatisticFails) {
  const std::string doc = gate_document();
  const std::string drifted = doctor(doc, "messages_median", "1");
  const TrendReport rep = compare_lab_trend(doc, drifted);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors[0].find("messages_median drifted"), std::string::npos)
      << rep.errors[0];

  // A flipped fit verdict fails even if the exponent itself stayed close.
  const std::string failed_fit =
      doctor(doc, "pass", "false", "\"kind\": \"fit\"");
  const TrendReport rep2 = compare_lab_trend(doc, failed_fit);
  ASSERT_FALSE(rep2.ok());
}

TEST(TrendTest, MissingCoverageFailsUnlessAllowed) {
  // Current run covers fewer curves than the baseline (a protocol filter, a
  // deleted band): that is a coverage regression, not silence.
  CampaignConfig cfg = gate_config();
  cfg.protocols = {"dfs"};
  const std::string smaller =
      bench_json(run_campaign(default_protocols(), default_families(), cfg));
  const TrendReport rep = compare_lab_trend(gate_document(), smaller);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors[0].find("missing from current"), std::string::npos);

  TrendConfig allow;
  allow.allow_missing = true;
  const TrendReport rep2 = compare_lab_trend(gate_document(), smaller, allow);
  EXPECT_TRUE(rep2.ok());
  EXPECT_FALSE(rep2.notes.empty());

  // The mirror image — new rows in the current document (a freshly declared
  // band whose baseline has not been regenerated yet) — is benign.
  const TrendReport rep3 = compare_lab_trend(smaller, gate_document());
  EXPECT_TRUE(rep3.ok()) << rep3.errors[0];
  EXPECT_FALSE(rep3.notes.empty());
}

TEST(TrendTest, IncomparableCampaignsFailFast) {
  CampaignConfig cfg = gate_config();
  cfg.master_seed = 99;
  const std::string other =
      bench_json(run_campaign(default_protocols(), default_families(), cfg));
  const TrendReport rep = compare_lab_trend(gate_document(), other);
  ASSERT_EQ(rep.errors.size(), 1u);  // one clear error, not per-row spam
  EXPECT_NE(rep.errors[0].find("master_seed"), std::string::npos);
}

TEST(TrendTest, MalformedDocumentsThrow) {
  EXPECT_THROW(compare_lab_trend("not json", gate_document()),
               std::invalid_argument);
  EXPECT_THROW(compare_lab_trend(gate_document(), "{\"bench\": \"x\"}"),
               std::invalid_argument);
  // A valid document with no meta row is an error, not a crash.
  const TrendReport rep = compare_lab_trend(
      "{\"bench\": \"complexity_lab\", \"rows\": []}", gate_document());
  EXPECT_FALSE(rep.ok());
}

TEST(TrendTest, PreAxisBaselinesStayComparable) {
  // PR-4 era documents carry no "axis" field; rows default to axis "n" so an
  // old committed baseline still gates an axis-aware current document.
  CampaignConfig cfg = gate_config();
  cfg.families = {"ring"};
  const std::string doc =
      bench_json(run_campaign(default_protocols(), default_families(), cfg));
  std::string legacy = doc;
  for (std::string::size_type at;
       (at = legacy.find("\"axis\": \"n\", ")) != std::string::npos;)
    legacy.erase(at, std::string("\"axis\": \"n\", ").size());
  EXPECT_EQ(legacy.find("\"axis\""), std::string::npos);
  const TrendReport rep = compare_lab_trend(legacy, doc);
  EXPECT_TRUE(rep.ok()) << rep.errors[0];
  EXPECT_GT(rep.cells_compared, 0u);
}

}  // namespace
}  // namespace ule::lab
