#include "bounds/bridge_crossing.hpp"

#include <gtest/gtest.h>

#include "election/flood_max.hpp"
#include "election/least_el.hpp"

namespace ule {
namespace {

TEST(BridgeCrossing, LeaderElectionAlwaysCrosses) {
  // A correct universal algorithm must achieve BC on every dumbbell —
  // otherwise two sides would decide independently (Lemma 3.8's engine).
  const auto sum = run_bridge_crossing(12, 20, make_flood_max(), 6, 1);
  EXPECT_EQ(sum.crossing_fraction, 1.0);
  for (const auto& run : sum.runs) {
    EXPECT_TRUE(run.unique_leader);
    EXPECT_NE(run.first_cross, kRoundForever);
  }
}

TEST(BridgeCrossing, MessagesBeforeCrossingScaleWithM) {
  // The operational Lemma 3.5: mean messages-before-crossing grows
  // linearly in the per-side edge budget m.
  std::vector<double> means;
  std::vector<std::size_t> side_ms;
  for (const std::size_t m : {30u, 120u, 480u}) {
    const auto sum =
        run_bridge_crossing(m, m, make_flood_max(), 8, 3);
    EXPECT_GT(sum.crossing_fraction, 0.99);
    means.push_back(sum.mean_messages_before_cross);
    side_ms.push_back(sum.side_m);
  }
  // Linear shape: quadrupling m at least triples the pre-crossing cost.
  EXPECT_GE(means[1], means[0] * 2.0);
  EXPECT_GE(means[2], means[1] * 2.0);
  // And it is a constant fraction of the side size.
  for (std::size_t i = 0; i < means.size(); ++i)
    EXPECT_GE(means[i], 0.2 * static_cast<double>(side_ms[i]));
}

TEST(BridgeCrossing, LeastElAlsoPaysOmegaM) {
  LeastElConfig cfg = LeastElConfig::all_candidates();
  const auto sum = run_bridge_crossing(40, 120, make_least_el(cfg), 6, 7);
  EXPECT_GT(sum.crossing_fraction, 0.99);
  EXPECT_GE(sum.mean_messages_before_cross, 0.2 * sum.side_m);
}

TEST(BridgeCrossing, ReportsPerRunDetails) {
  const auto sum = run_bridge_crossing(10, 15, make_flood_max(), 4, 9);
  ASSERT_EQ(sum.runs.size(), 4u);
  EXPECT_GT(sum.kappa, 1u);
  for (const auto& r : sum.runs) {
    EXPECT_LT(r.open_left, dumbbell_open_edge_count(15));
    EXPECT_LE(r.messages_before_cross, r.messages_total);
  }
}

}  // namespace
}  // namespace ule
