#include "bounds/truncation.hpp"

#include <gtest/gtest.h>

#include "graphgen/clique_cycle.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"

namespace ule {
namespace {

TEST(Truncation, FullHorizonAlwaysElects) {
  const Graph g = make_cycle(20);
  const auto st = run_truncation_trials(g, /*horizon=*/12, 20, 1);
  EXPECT_EQ(st.unique_leader, st.trials);
}

TEST(Truncation, ZeroHorizonElectsEverybody) {
  const Graph g = make_cycle(10);
  const auto st = run_truncation_trials(g, 0, 5, 2);
  EXPECT_EQ(st.multi_leaders, st.trials);  // nobody hears anything
}

TEST(Truncation, ShortHorizonFailsOnCliqueCycle) {
  // Theorem 3.13's engine: with horizon < D'/4 the arcs are causally
  // independent, so multiple local maxima survive and multiple leaders
  // are elected with substantial probability.
  const CliqueCycle cc = make_clique_cycle(64, 32);
  const Round quarter = cc.d_prime / 4 - 1;
  const auto st = run_truncation_trials(cc.graph, quarter / 2, 40, 3);
  EXPECT_LT(st.success_rate(), 15.0 / 16.0)
      << "short-horizon success too high for the bound to bind";
  EXPECT_GT(st.multi_leaders, 0u);
}

TEST(Truncation, SuccessImprovesWithHorizon) {
  const CliqueCycle cc = make_clique_cycle(48, 24);
  const auto diam = diameter_exact(cc.graph);
  const auto short_h = run_truncation_trials(cc.graph, diam / 8, 30, 5);
  const auto full_h = run_truncation_trials(cc.graph, diam + 1, 30, 5);
  EXPECT_LT(short_h.success_rate(), full_h.success_rate());
  EXPECT_EQ(full_h.unique_leader, full_h.trials);
}

TEST(Truncation, StatsAddUp) {
  const CliqueCycle cc = make_clique_cycle(32, 16);
  const auto st = run_truncation_trials(cc.graph, 2, 25, 7);
  EXPECT_EQ(st.unique_leader + st.zero_leaders + st.multi_leaders, st.trials);
}

}  // namespace
}  // namespace ule
