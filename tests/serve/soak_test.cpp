// The determinism soak (and the TSan target for the serve layer): N
// concurrent sessions hammer one daemon with registry-drawn scenarios —
// adversary, churn and reliable-transport tokens included — and every
// streamed result is diffed counter-for-counter, and metrics-snapshot
// byte-for-byte, against a local in-process replay of the same token.  The
// daemon must be indistinguishable from run_scenario over a socket, under
// real concurrency (workers=2, so two jobs execute in parallel while the IO
// thread multiplexes the sessions).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/metrics.hpp"
#include "net/rng.hpp"
#include "scenario/fuzzer.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace ule::serve {
namespace {

struct SoakTally {
  std::atomic<std::size_t> jobs{0};
  std::atomic<std::size_t> adversarial{0};
  std::atomic<std::size_t> failures{0};
};

void soak_session(std::uint16_t port, std::uint64_t seed, std::size_t jobs,
                  SoakTally& tally) {
  const ProtocolRegistry& protocols = default_protocols();
  const FamilyRegistry& families = default_families();
  Rng rng(seed);
  ServeClient client;
  client.connect("127.0.0.1", port);
  for (std::size_t j = 0; j < jobs; ++j) {
    // threads_fraction 0: per-job engines stay at threads=1 (the daemon's
    // execution model); the concurrency under test is job-level.
    const Scenario s = draw_scenario(rng, protocols, families, /*max_n=*/20,
                                     /*threads_fraction=*/0,
                                     /*adversary_fraction=*/0.5, "",
                                     /*churn_fraction=*/0.5);
    const std::string token = s.encode();
    SCOPED_TRACE(token);
    if (s.adversary.active()) ++tally.adversarial;

    const auto sub = client.submit_token(token, /*tag=*/j);
    if (!sub.accepted) {  // backpressure: retry the same draw
      --j;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    const auto reply = client.await_result(sub.job_id);
    ASSERT_TRUE(reply.ok) << reply.error;

    ScenarioRunConfig rc;
    rc.check_determinism = false;
    rc.metrics.enabled = true;
    const ScenarioOutcome local = run_scenario(protocols, families, s, rc);
    if (reply.counters != result_counters(local.report) ||
        reply.violations != local.violations.size()) {
      ++tally.failures;
      ADD_FAILURE() << "daemon diverged from local replay on " << token;
      continue;
    }
    // The streamed telemetry is the local run's snapshot, byte for byte.
    ASSERT_TRUE(local.report.run.metrics.has_value());
    EXPECT_EQ(reply.metrics_doc, metrics_json(*local.report.run.metrics));
    ++tally.jobs;
  }
}

TEST(ServeSoak, ConcurrentSessionsMatchLocalReplayExactly) {
  ServeConfig cfg;
  cfg.workers = 2;  // TSan runs this config: real parallel job execution
  ElectionServer server(cfg);
  server.start();

  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kJobsPerSession = 12;
  SoakTally tally;
  std::vector<std::thread> sessions;
  for (std::size_t i = 0; i < kSessions; ++i)
    sessions.emplace_back([&, i] {
      soak_session(server.port(), 0x50AC + 0x9E3779B9ULL * i,
                   kJobsPerSession, tally);
    });
  for (auto& t : sessions) t.join();

  EXPECT_EQ(tally.failures, 0u);
  EXPECT_EQ(tally.jobs, kSessions * kJobsPerSession);
  // The draw fractions guarantee fault-mask coverage in expectation; assert
  // we actually exercised the adversarial path, not just clean runs.
  EXPECT_GT(tally.adversarial, 0u);

  server.request_shutdown();
  server.wait();
  const ServeStats st = server.stats();
  EXPECT_EQ(st.completed, st.accepted);
  EXPECT_EQ(st.errors, 0u);
}

}  // namespace
}  // namespace ule::serve
