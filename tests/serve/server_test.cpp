// End-to-end contracts of the election daemon (serve/server.hpp), driven
// through real loopback sockets: result parity with in-process runs,
// telemetry streaming, malformed-frame and malformed-token handling,
// explicit backpressure, the SIGTERM drain (killed mid-job, the daemon
// still delivers every accepted result), and the /health + /metrics HTTP
// endpoints.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "net/metrics.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace ule::serve {
namespace {

constexpr const char* kToken = "ule1:ring{n=16}:flood_max:k=none:w=sim:s=9:t=1";

ResultCounters local_counters(const std::string& token) {
  ScenarioRunConfig rc;
  rc.check_determinism = false;
  const ScenarioOutcome out = run_scenario(
      default_protocols(), default_families(), Scenario::parse(token), rc);
  EXPECT_TRUE(out.ok());
  return result_counters(out.report);
}

TEST(ElectionServerTest, ResultMatchesInProcessRunBitForBit) {
  ElectionServer server;
  server.start();
  ServeClient client;
  client.connect("127.0.0.1", server.port());

  const auto sub = client.submit_token(kToken, /*tag=*/55);
  ASSERT_TRUE(sub.accepted);
  const auto reply = client.await_result(sub.job_id);
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.violations, 0u);
  EXPECT_EQ(reply.counters, local_counters(kToken));

  // The streamed telemetry reassembles into a schema-clean engine_metrics
  // document (the same gate CI's validate-metrics runs).
  std::string err;
  EXPECT_TRUE(validate_metrics_json(reply.metrics_doc, &err)) << err;

  server.request_shutdown();
  server.wait();
  const ServeStats st = server.stats();
  EXPECT_EQ(st.accepted, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.errors, 0u);
}

TEST(ElectionServerTest, AdversarialAndChurnTokensMatchToo) {
  ElectionServer server;
  server.start();
  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const std::vector<std::string> tokens = {
      "ule1:ring{n=12}:flood_max:k=none:w=sim:s=3:t=1:a=0.0.0.500.7",
      "ule1:ring{n=12}:dfs:k=none:w=sim:s=3:t=1:a=2.100.0.100.7",
      "ule1:complete{n=10}:kingdom_reliable:k=n:w=sim:s=11:t=1"
      ":a=1.150.0.0.5:r=4.16",
      "ule1:complete{n=10}:kingdom_reliable:k=n:w=sim:s=11:t=1:f=3@2",
  };
  for (const auto& token : tokens) {
    const auto sub = client.submit_token(token);
    ASSERT_TRUE(sub.accepted) << token;
    const auto reply = client.await_result(sub.job_id);
    ASSERT_TRUE(reply.ok) << token << ": " << reply.error;
    EXPECT_EQ(reply.counters, local_counters(token)) << token;
  }
  server.request_shutdown();
  server.wait();
}

TEST(ElectionServerTest, MalformedTokenGetsJobErrorAndSessionStaysOpen) {
  ElectionServer server;
  server.start();
  ServeClient client;
  client.connect("127.0.0.1", server.port());

  client.send_frame(FrameType::SubmitJob, 0, 0, 0, /*tag=*/7, 0,
                    "ule1:this-is-not-a-token");
  Frame f;
  ASSERT_TRUE(client.read_frame(f));
  EXPECT_EQ(f.header.type, static_cast<std::uint16_t>(FrameType::JobError));
  EXPECT_EQ(f.header.b, 7u);
  EXPECT_FALSE(f.payload.empty());

  // Same session, next submit: still serviced.
  const auto sub = client.submit_token(kToken);
  ASSERT_TRUE(sub.accepted);
  EXPECT_TRUE(client.await_result(sub.job_id).ok);

  server.request_shutdown();
  server.wait();
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST(ElectionServerTest, MalformedFrameGetsJobErrorThenClose) {
  ElectionServer server;
  server.start();
  ServeClient client;
  client.connect("127.0.0.1", server.port());

  std::string garbage(kHeaderBytes, '\0');
  garbage[0] = 0x66;  // unknown type
  client.send_raw(garbage);

  Frame f;
  ASSERT_TRUE(client.read_frame(f));
  EXPECT_EQ(f.header.type, static_cast<std::uint16_t>(FrameType::JobError));
  EXPECT_NE(f.payload.find("malformed frame"), std::string::npos)
      << f.payload;
  EXPECT_FALSE(client.read_frame(f));  // server closed the session

  // The daemon itself survives: a fresh session works.
  ServeClient again;
  again.connect("127.0.0.1", server.port());
  const auto sub = again.submit_token(kToken);
  ASSERT_TRUE(sub.accepted);
  EXPECT_TRUE(again.await_result(sub.job_id).ok);

  server.request_shutdown();
  server.wait();
}

TEST(ElectionServerTest, NonSubmitClientFrameIsRejectedAndClosed) {
  ElectionServer server;
  server.start();
  ServeClient client;
  client.connect("127.0.0.1", server.port());
  client.send_frame(FrameType::JobResult, 0, 0, 1, 2, 3, "rounds=1\n");
  Frame f;
  ASSERT_TRUE(client.read_frame(f));
  EXPECT_EQ(f.header.type, static_cast<std::uint16_t>(FrameType::JobError));
  EXPECT_FALSE(client.read_frame(f));
  server.request_shutdown();
  server.wait();
}

TEST(ElectionServerTest, FullQueueAnswersJobReject) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  ElectionServer server(cfg);
  server.start();
  ServeClient client;
  client.connect("127.0.0.1", server.port());

  // A pipelined burst: 16 SubmitJob frames land on the IO thread back to
  // back, far faster than worker 1 can drain them through a queue of 2.
  // Most of the burst MUST bounce with an explicit JobReject — never a
  // stall, never a dropped session — while every accepted job still
  // completes correctly.
  const std::string slow = "ule1:torus{rows=14,cols=14}:dfs:k=n:w=sim:s=2:t=1";
  constexpr int kBurst = 16;
  std::string burst;
  for (int i = 0; i < kBurst; ++i)
    burst += encode_frame(FrameType::SubmitJob, 0, 0, 0, /*tag=*/i, 0, slow);
  client.send_raw(burst);

  std::size_t accepted = 0, rejected = 0, completed = 0;
  std::vector<std::uint64_t> ids;
  Frame f;
  while (completed < accepted ||
         accepted + rejected < static_cast<std::size_t>(kBurst)) {
    ASSERT_TRUE(client.read_frame(f));
    switch (static_cast<FrameType>(f.header.type)) {
      case FrameType::JobAccepted:
        ++accepted;
        ids.push_back(f.header.a);
        break;
      case FrameType::JobReject:
        ++rejected;
        EXPECT_FALSE(f.payload.empty());
        EXPECT_EQ(f.header.c, 2u);  // the queue capacity, for the operator
        break;
      case FrameType::JobResult:
        ++completed;
        EXPECT_EQ(parse_result(f.payload), local_counters(slow));
        break;
      case FrameType::StreamChunk:
        break;
      default:
        FAIL() << "unexpected frame " << f.header.type;
    }
  }
  // Worker 1 + queue 2 can hold at most a handful of the burst in flight;
  // the rest must have been shed explicitly.
  EXPECT_GT(accepted, 0u);
  EXPECT_GE(rejected, static_cast<std::size_t>(kBurst) - 8);
  EXPECT_EQ(completed, ids.size());
  server.request_shutdown();
  server.wait();
  EXPECT_EQ(server.stats().rejected, rejected);
  EXPECT_EQ(server.stats().completed, accepted);
}

TEST(ElectionServerTest, SigtermMidJobDrainsAndStillDeliversResults) {
  ServeConfig cfg;
  cfg.workers = 1;
  ElectionServer server(cfg);
  server.start();
  server.install_signal_handlers();  // also ignores SIGPIPE
  ServeClient client;
  client.connect("127.0.0.1", server.port());

  // Accept a queue of real jobs, then SIGTERM the process mid-execution.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto sub = client.submit_token(kToken, /*tag=*/i);
    ASSERT_TRUE(sub.accepted);
    ids.push_back(sub.job_id);
  }
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);

  // The drain contract: every accepted job still produces its JobResult,
  // bit-for-bit correct, before the daemon exits.
  const ResultCounters expect = local_counters(kToken);
  for (const std::uint64_t id : ids) {
    const auto reply = client.await_result(id);
    ASSERT_TRUE(reply.ok) << reply.error;
    EXPECT_EQ(reply.counters, expect);
  }
  server.wait();  // returns only because the signal started the drain
  const ServeStats st = server.stats();
  EXPECT_TRUE(st.draining);
  EXPECT_EQ(st.completed, ids.size());

  // Draining daemons refuse new sessions' jobs; the listen socket is gone.
  ServeClient late;
  EXPECT_THROW(late.connect("127.0.0.1", server.port()), std::runtime_error);
}

TEST(ElectionServerTest, HealthAndMetricsEndpoints) {
  ElectionServer server;
  server.start();
  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const auto sub = client.submit_token(kToken);
  ASSERT_TRUE(sub.accepted);
  ASSERT_TRUE(client.await_result(sub.job_id).ok);

  std::string body;
  EXPECT_EQ(http_get("127.0.0.1", server.http_port(), "/health", &body), 200);
  EXPECT_NE(body.find("\"status\": \"ok\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"completed\": 1"), std::string::npos) << body;

  EXPECT_EQ(http_get("127.0.0.1", server.http_port(), "/metrics", &body), 200);
  std::string err;
  EXPECT_TRUE(validate_metrics_json(body, &err)) << err << "\n" << body;
  // The serve-layer counters ride inside the same strict schema.
  EXPECT_NE(body.find("serve.jobs_completed"), std::string::npos);

  EXPECT_EQ(http_get("127.0.0.1", server.http_port(), "/nope", &body), 404);
  server.request_shutdown();
  server.wait();
}

TEST(ElectionServerTest, HttpGarbageGetsAnErrorNotACrash) {
  ElectionServer server;
  server.start();
  // Raw socket talking junk at the HTTP port.
  ServeClient raw;
  raw.connect("127.0.0.1", server.http_port());
  raw.send_raw("NOT HTTP AT ALL\r\n\r\n");
  // The daemon answers 4xx/5xx or closes; either way it keeps serving.
  std::string body;
  EXPECT_EQ(http_get("127.0.0.1", server.http_port(), "/health", &body), 200);
  server.request_shutdown();
  server.wait();
}

}  // namespace
}  // namespace ule::serve
