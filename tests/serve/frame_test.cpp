// The serve wire protocol's framing and payload grammars: encode/decode
// round trips, byte-at-a-time reassembly, and the decoder's behavior under
// hostile input — truncated, oversized, unknown-type and plain-garbage
// frames must yield Bad with a diagnostic (never a crash, hang, or large
// allocation), and a deterministic fuzz sweep pins that for thousands of
// random byte streams.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/rng.hpp"
#include "scenario/scenario.hpp"
#include "serve/frame.hpp"
#include "serve/protocol.hpp"

namespace ule::serve {
namespace {

Frame decode_one(const std::string& bytes) {
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  std::string err;
  EXPECT_EQ(dec.next(f, &err), FrameDecoder::Status::Frame) << err;
  EXPECT_EQ(dec.next(f, &err), FrameDecoder::Status::NeedMore);
  return f;
}

TEST(FrameCodec, RoundTripsEveryTypeWithAndWithoutPayload) {
  const std::vector<FrameType> types = {
      FrameType::SubmitJob, FrameType::JobAccepted, FrameType::JobReject,
      FrameType::StreamChunk, FrameType::JobResult, FrameType::JobError};
  for (const FrameType t : types) {
    for (const std::string& payload :
         {std::string(), std::string("ule1:ring{n=8}:flood_max:k=none"),
          std::string(4096, 'x')}) {
      const std::string bytes =
          encode_frame(t, /*channel=*/3, /*flags=*/1, 0x0123456789ABCDEFULL,
                       42, 7, payload);
      ASSERT_EQ(bytes.size(), kHeaderBytes + payload.size());
      const Frame f = decode_one(bytes);
      EXPECT_EQ(f.header.type, static_cast<std::uint16_t>(t));
      EXPECT_EQ(f.header.channel, 3);
      EXPECT_EQ(f.header.flags, 1);
      EXPECT_EQ(f.header.length, payload.size());
      EXPECT_EQ(f.header.a, 0x0123456789ABCDEFULL);
      EXPECT_EQ(f.header.b, 42u);
      EXPECT_EQ(f.header.c, 7u);
      EXPECT_EQ(f.payload, payload);
    }
  }
}

TEST(FrameCodec, HeaderIsLittleEndianAtDocumentedOffsets) {
  const std::string bytes = encode_frame(FrameType::JobResult, 0xAB, 0xCD,
                                         0x1122334455667788ULL, 0x99, 0, "");
  ASSERT_EQ(bytes.size(), kHeaderBytes);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 5);  // type lo
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0);  // type hi
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0xAB);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0xCD);
  EXPECT_EQ(static_cast<unsigned char>(bytes[8]), 0x88);   // a LSB
  EXPECT_EQ(static_cast<unsigned char>(bytes[15]), 0x11);  // a MSB
  EXPECT_EQ(static_cast<unsigned char>(bytes[16]), 0x99);  // b LSB
}

TEST(FrameDecoderTest, ReassemblesFromSingleByteFeeds) {
  const std::string payload = "ule1:ring{n=16}:flood_max:k=none:w=sim:s=9:t=1";
  const std::string bytes =
      encode_frame(FrameType::SubmitJob, 0, 0, 0, 77, 0, payload);
  FrameDecoder dec;
  Frame f;
  std::string err;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_EQ(dec.next(f, &err), FrameDecoder::Status::NeedMore)
        << "complete frame after only " << i << " bytes";
    dec.feed(&bytes[i], 1);
  }
  ASSERT_EQ(dec.next(f, &err), FrameDecoder::Status::Frame) << err;
  EXPECT_EQ(f.payload, payload);
  EXPECT_EQ(f.header.b, 77u);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameDecoderTest, YieldsBackToBackFramesFromOneFeed) {
  std::string bytes;
  for (int i = 0; i < 5; ++i)
    bytes += encode_frame(FrameType::StreamChunk, 0, i == 4 ? kLastChunk : 0,
                          9, 0, static_cast<std::uint64_t>(i),
                          "chunk" + std::to_string(i));
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  std::string err;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(dec.next(f, &err), FrameDecoder::Status::Frame) << err;
    EXPECT_EQ(f.header.c, static_cast<std::uint64_t>(i));
    EXPECT_EQ(f.payload, "chunk" + std::to_string(i));
  }
  EXPECT_EQ(dec.next(f, &err), FrameDecoder::Status::NeedMore);
}

TEST(FrameDecoderTest, UnknownTypeIsBadAndStaysBad) {
  std::string bytes = encode_frame(FrameType::SubmitJob, 0, 0, 0, 0, 0, "x");
  bytes[0] = 0x7F;  // not a FrameType
  bytes[1] = 0x00;
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  std::string err;
  EXPECT_EQ(dec.next(f, &err), FrameDecoder::Status::Bad);
  EXPECT_NE(err.find("type"), std::string::npos) << err;
  EXPECT_TRUE(dec.bad());
  // Later perfectly-valid input cannot resurrect a poisoned stream.
  const std::string good =
      encode_frame(FrameType::SubmitJob, 0, 0, 0, 0, 0, "ule1:...");
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next(f, &err), FrameDecoder::Status::Bad);
}

TEST(FrameDecoderTest, ZeroTypeIsBad) {
  std::string bytes(kHeaderBytes, '\0');
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  std::string err;
  EXPECT_EQ(dec.next(f, &err), FrameDecoder::Status::Bad);
}

TEST(FrameDecoderTest, OversizedLengthIsBadBeforeThePayloadArrives) {
  // A hostile length field must be rejected from the header alone — the
  // decoder may never wait for (or allocate) 4 GiB of payload.
  std::string bytes = encode_frame(FrameType::SubmitJob, 0, 0, 0, 0, 0, "");
  bytes[4] = static_cast<char>(0xFF);
  bytes[5] = static_cast<char>(0xFF);
  bytes[6] = static_cast<char>(0xFF);
  bytes[7] = static_cast<char>(0xFF);
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  std::string err;
  EXPECT_EQ(dec.next(f, &err), FrameDecoder::Status::Bad);
  EXPECT_NE(err.find("length"), std::string::npos) << err;
}

TEST(FrameDecoderTest, EncodeRefusesOversizedPayload) {
  EXPECT_THROW(encode_frame(FrameType::SubmitJob, 0, 0, 0, 0, 0,
                            std::string(kMaxPayload + 1, 'x')),
               std::invalid_argument);
}

TEST(FrameDecoderTest, TruncatedStreamNeverYieldsAFrame) {
  const std::string bytes =
      encode_frame(FrameType::JobResult, 0, 0, 1, 2, 3, "rounds=10\n");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(bytes.data(), cut);
    Frame f;
    std::string err;
    EXPECT_EQ(dec.next(f, &err), FrameDecoder::Status::NeedMore)
        << "frame from a " << cut << "-byte prefix";
  }
}

TEST(FrameDecoderFuzz, GarbageBytesNeverCrashAndBadIsSticky) {
  // Deterministic garbage: random byte streams fed in random-sized slices.
  // The decoder must only ever answer Frame / NeedMore / Bad, stay Bad once
  // poisoned, and keep its buffer bounded.
  Rng rng(0xF4A3E);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = rng.below(200);
    std::string bytes(len, '\0');
    for (auto& ch : bytes) ch = static_cast<char>(rng.below(256));
    // Half the rounds get a valid frame spliced in front so the fuzz also
    // exercises the valid-then-garbage transition.
    if (rng.below(2) == 0)
      bytes = encode_frame(FrameType::SubmitJob, 0, 0, 0, round, 0, "tok") +
              bytes;
    FrameDecoder dec;
    std::size_t fed = 0;
    bool was_bad = false;
    while (fed < bytes.size()) {
      const std::size_t n =
          std::min(bytes.size() - fed, 1 + rng.below(37));
      dec.feed(bytes.data() + fed, n);
      fed += n;
      Frame f;
      std::string err;
      for (;;) {
        const FrameDecoder::Status st = dec.next(f, &err);
        if (st == FrameDecoder::Status::Frame) {
          ASSERT_FALSE(was_bad) << "frame after Bad";
          ASSERT_LE(f.payload.size(), kMaxPayload);
          continue;
        }
        if (st == FrameDecoder::Status::Bad) {
          ASSERT_FALSE(err.empty());
          was_bad = true;
        }
        break;
      }
      ASSERT_LE(dec.buffered(), kHeaderBytes + kMaxPayload + 256u);
    }
    ASSERT_EQ(dec.bad(), was_bad);
  }
}

TEST(ResultGrammar, RoundTripsAndRejectsMalformedLines) {
  const ResultCounters counters = {
      {"rounds", 12}, {"messages", 340}, {"outcome_digest", ~0ULL}};
  EXPECT_EQ(parse_result(encode_result(counters)), counters);
  EXPECT_EQ(parse_result(""), ResultCounters{});
  EXPECT_THROW(parse_result("rounds\n"), std::invalid_argument);
  EXPECT_THROW(parse_result("rounds=ten\n"), std::invalid_argument);
  EXPECT_THROW(parse_result("=5\n"), std::invalid_argument);
}

TEST(SubmitGrammar, TokenAndFieldFormsParseToTheSameScenario) {
  const std::string token =
      "ule1:gnm{n=20,m=40}:least_el_all:k=n:w=rand.10:s=77:t=2";
  const Scenario from_token = parse_submit(token, 0);
  const Scenario from_fields = parse_submit(
      "family=gnm;n=20;m=40;protocol=least_el_all;k=n;w=rand.10;s=77;t=2",
      kSubmitFields);
  EXPECT_EQ(from_token, from_fields);
  EXPECT_EQ(from_fields.encode(), token);
}

TEST(SubmitGrammar, FieldFormCarriesAdversaryAndReliableTails) {
  const std::string token =
      "ule1:ring{n=12}:flood_max_reliable:k=none:w=sim:s=5:t=1"
      ":a=2.100.0.0.9:f=3@4-7:r=6.0";
  const Scenario s = parse_submit(
      "family=ring;n=12;protocol=flood_max_reliable;k=none;w=sim;s=5;t=1;"
      "a=2.100.0.0.9;f=3@4-7;r=6.0",
      kSubmitFields);
  EXPECT_EQ(s.encode(), token);
}

TEST(SubmitGrammar, FieldFormRejectsDuplicatesAndMissingKeys) {
  EXPECT_THROW(parse_submit("family=ring;n=8;family=path;protocol=flood_max",
                            kSubmitFields),
               std::invalid_argument);
  EXPECT_THROW(parse_submit("protocol=flood_max", kSubmitFields),
               std::invalid_argument);
  EXPECT_THROW(parse_submit("", kSubmitFields), std::invalid_argument);
  EXPECT_THROW(parse_submit("not a token", 0), std::invalid_argument);
}

}  // namespace
}  // namespace ule::serve
